// Flash crowd: every flow is legitimate TCP, but the aggregate surge looks
// like an attack to a naive victim-side detector. The example compares MAFIC
// against the proportional dropper of the authors' earlier pushback work on
// the same surge and shows why adaptive probing matters: MAFIC's probes let
// the responsive flows through (low collateral damage), while proportional
// dropping keeps punishing everybody.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"

	"mafic"
	"mafic/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// flashCrowdScenario builds a surge of purely legitimate traffic: many TCP
// flows, a single token attack flow (the workload generator always provisions
// at least one), and a forced defence activation so both defences face the
// same conditions.
func flashCrowdScenario(defense mafic.DefenseKind) mafic.Scenario {
	s := mafic.DefaultScenario()
	s.Name = "flashcrowd-" + defense.String()
	s.Defense = defense
	s.Workload.TotalFlows = 80
	s.Workload.TCPShare = 1.0 // everything is a well-behaved TCP flow
	s.Workload.AttackRate = 800
	s.Duration = 3 * sim.Second
	// Detection is deliberately disabled; the scheduled fallback plays
	// the role of an operator overreacting to the surge.
	s.Pushback.HistoryFactor = 1e9
	s.DetectionFallback = 300 * sim.Millisecond
	return s
}

func run() error {
	maficRes, err := mafic.Simulate(flashCrowdScenario(mafic.DefenseMAFIC))
	if err != nil {
		return err
	}
	propRes, err := mafic.Simulate(flashCrowdScenario(mafic.DefenseBaseline))
	if err != nil {
		return err
	}

	fmt.Println("flash crowd: 80 legitimate TCP flows surge toward the server,")
	fmt.Println("and the operator turns on dropping at every ingress router anyway.")
	fmt.Println()
	fmt.Printf("%-34s %18s %18s\n", "", "MAFIC", "proportional drop")
	fmt.Printf("%-34s %17.2f%% %17.2f%%\n", "legitimate packets dropped (Lr)",
		maficRes.LegitimateDropRate*100, propRes.LegitimateDropRate*100)
	fmt.Printf("%-34s %17.3f%% %17.3f%%\n", "false positive rate (θp)",
		maficRes.FalsePositiveRate*100, propRes.FalsePositiveRate*100)
	fmt.Printf("%-34s %17d %17d\n", "legitimate flows condemned",
		maficRes.LegitFlowsCondemned, propRes.LegitFlowsCondemned)
	fmt.Println()
	if maficRes.LegitimateDropRate < propRes.LegitimateDropRate {
		fmt.Println("MAFIC's probing recognises the responsive flows and stops punishing them;")
		fmt.Println("the proportional dropper keeps discarding the flash crowd for the whole run.")
	} else {
		fmt.Println("unexpected: MAFIC did not outperform the proportional dropper on this seed")
	}
	return nil
}
