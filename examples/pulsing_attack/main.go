// Pulsing attack: probe MAFIC's known blind spot. A shrew-style attacker
// floods in short bursts and goes silent in between, so its arrival rate
// "decreases" right after the duplicated-ACK probe — exactly what MAFIC
// interprets as TCP-friendly behaviour. The example runs the same scenario
// with a constant flood and with two pulsing variants and compares how many
// attack packets slip through to the victim (the false-negative rate θn).
//
//	go run ./examples/pulsing_attack
package main

import (
	"fmt"
	"log"

	"mafic"
	"mafic/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type variant struct {
	name   string
	period sim.Time
	duty   float64
}

func run() error {
	variants := []variant{
		{name: "constant flood", period: 0, duty: 0},
		{name: "pulsing, 50% duty cycle", period: sim.Second, duty: 0.5},
		{name: "pulsing, 20% duty cycle", period: sim.Second, duty: 0.2},
	}

	fmt.Println("MAFIC against constant vs. pulsing (shrew-style) attacks")
	fmt.Println("same peak rate, same victim, same defence configuration")
	fmt.Println()
	fmt.Printf("%-28s %12s %12s %14s\n", "attack shape", "θn (%)", "α (%)", "attack pkts at victim")

	for i, v := range variants {
		s := mafic.DefaultScenario()
		s.Name = "pulsing-" + v.name
		s.Seed = int64(10 + i)
		s.Duration = 4 * sim.Second
		s.Workload.AttackPulsePeriod = v.period
		s.Workload.AttackDutyCycle = v.duty

		res, err := mafic.Simulate(s)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		fmt.Printf("%-28s %12.3f %12.2f %14d\n",
			v.name, res.FalseNegativeRate*100, res.Accuracy*100, res.Counts.VictimAttack)
	}

	fmt.Println()
	fmt.Println("A burst that fits inside the probing window looks exactly like a source")
	fmt.Println("backing off, so low-duty-cycle attackers are classified as nice flows and")
	fmt.Println("keep hitting the victim — the trade-off the paper acknowledges when it")
	fmt.Println("limits its claims to sustained flooding attacks.")
	return nil
}
