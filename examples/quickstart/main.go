// Quickstart: run the paper's default scenario (Table II) with the public
// API and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mafic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The default scenario is the paper's Table II operating point:
	// Pd = 90%, Vt = 50 flows, Γ = 95% TCP, R = 1e6 pkt/s (scaled),
	// N = 40 routers.
	scenario := mafic.DefaultScenario()
	scenario.Name = "quickstart"

	result, err := mafic.Simulate(scenario)
	if err != nil {
		return fmt.Errorf("simulate: %w", err)
	}

	fmt.Println("MAFIC quickstart — paper Table II defaults")
	fmt.Printf("  defense activated at t=%.2fs on %d attack-transit routers\n",
		result.ActivationSeconds, result.ATRCount)
	fmt.Printf("  attack dropping accuracy (α):     %6.2f%%\n", result.Accuracy*100)
	fmt.Printf("  traffic reduction rate (β):       %6.2f%%\n", result.TrafficReduction*100)
	fmt.Printf("  false positive rate (θp):         %6.3f%%\n", result.FalsePositiveRate*100)
	fmt.Printf("  false negative rate (θn):         %6.3f%%\n", result.FalseNegativeRate*100)
	fmt.Printf("  legitimate packet drop rate (Lr): %6.2f%%\n", result.LegitimateDropRate*100)
	fmt.Printf("  flows: probed=%d nice=%d condemned=%d\n",
		result.DefenseStats.FlowsProbed, result.DefenseStats.FlowsNice, result.DefenseStats.FlowsCondemned)
	return nil
}
