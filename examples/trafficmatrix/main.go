// Traffic-matrix demo: exercise the set-union counting substrate (paper
// Section II) on its own. Known volumes are injected from two ingress
// routers toward the victim; the LogLog sketches at every router estimate
// |S_i|, |D_j| and the matrix entries a_ij = |S_i| + |D_j| − |S_i ∪ D_j|,
// which are then compared against the ground truth.
//
//	go run ./examples/trafficmatrix
package main

import (
	"fmt"
	"log"

	"mafic/internal/netsim"
	"mafic/internal/sim"
	"mafic/internal/topology"
	"mafic/internal/trafficmatrix"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := sim.NewRNG(7)
	sched := sim.NewScheduler()
	cfg := topology.DefaultConfig()
	cfg.NumRouters = 16
	domain, err := topology.Build(cfg, sched, rng)
	if err != nil {
		return fmt.Errorf("build domain: %w", err)
	}
	domain.Victim.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})

	monitor, err := trafficmatrix.NewMonitor(domain.Net, trafficmatrix.MonitorConfig{
		Epoch:   time500ms(),
		Buckets: 2048,
	}, nil)
	if err != nil {
		return fmt.Errorf("monitor: %w", err)
	}

	// Inject known volumes from two clients behind different ingress
	// routers.
	volumes := map[int]int{0: 2000, len(domain.Clients) - 1: 700}
	for clientIdx, count := range volumes {
		client := domain.Clients[clientIdx]
		for i := 0; i < count; i++ {
			at := sim.Time(i) * 400 * sim.Microsecond
			sched.ScheduleAt(at, func(sim.Time) {
				pkt := &netsim.Packet{
					ID: domain.Net.NextPacketID(),
					Label: netsim.FlowLabel{
						SrcIP: client.PrimaryIP(), DstIP: domain.VictimIP(),
						SrcPort: 4000, DstPort: 80,
					},
					Kind: netsim.KindData, Proto: netsim.ProtoTCP, Size: 500,
				}
				client.Send(pkt)
			})
		}
	}
	if err := sched.Run(); err != nil {
		return fmt.Errorf("run: %w", err)
	}

	report := monitor.Compute(sched.Now())
	fmt.Println("set-union counting traffic matrix (one epoch)")
	fmt.Printf("victim router |D_j| estimate: %.0f distinct packets (ground truth %d)\n",
		report.DestEstimate(domain.LastHop.ID()), 2700)
	fmt.Println("top contributors toward the victim router:")
	for _, cell := range report.TopSources(domain.LastHop.ID()) {
		var truth int
		for clientIdx, count := range volumes {
			if domain.IngressOf(domain.Clients[clientIdx]).ID() == cell.Source {
				truth += count
			}
		}
		fmt.Printf("  ingress router %-3d a_ij ≈ %6.0f packets (ground truth %d)\n",
			cell.Source, cell.Packets, truth)
	}
	fmt.Printf("\nsketch memory: %d buckets/router (LogLog standard error ≈ %.1f%%)\n",
		2048, 1.30/45.25*100)
	return nil
}

// time500ms keeps the epoch long enough that the whole injection fits into a
// single measurement period.
func time500ms() sim.Time { return 1500 * sim.Millisecond }
