package mafic

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesCompile builds every program under examples/ (compile only, no
// execution), so the examples cannot rot as the public API evolves. It needs
// the go tool on PATH and skips — loudly — when it is missing.
func TestExamplesCompile(t *testing.T) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH; cannot compile examples")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("read examples/: %v", err)
	}
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		found++
		dir := filepath.Join("examples", e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			cmd := exec.Command(goTool, "build", "-o", os.DevNull, "./"+dir)
			cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go build %s failed: %v\n%s", dir, err, out)
			}
		})
	}
	if found == 0 {
		t.Fatal("no example programs found under examples/")
	}
}
