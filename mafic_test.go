package mafic

import (
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/sim"
)

func TestPublicDefaultsMatchPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.DropProbability != 0.90 {
		t.Fatalf("default Pd = %v, want 0.90", cfg.DropProbability)
	}
	if cfg.ProbeWindowRTTs != 2 {
		t.Fatalf("default probe window = %v RTTs, want 2", cfg.ProbeWindowRTTs)
	}
	s := DefaultScenario()
	if s.Workload.TotalFlows != 50 || s.Workload.TCPShare != 0.95 || s.Topology.NumRouters != 40 {
		t.Fatalf("default scenario does not match Table II: %+v", s.Workload)
	}
	if s.Defense != DefenseMAFIC {
		t.Fatal("default defence should be MAFIC")
	}
}

func TestPublicNewDefender(t *testing.T) {
	sched := sim.NewScheduler()
	net := netsim.New(sched, sim.NewRNG(1))
	r := net.AddRouter("atr")
	d, err := NewDefender(DefaultConfig(), r, nil)
	if err != nil {
		t.Fatalf("NewDefender: %v", err)
	}
	if d.Active() {
		t.Fatal("new defender should start inactive")
	}
	d.Activate(netsim.IP(42))
	if !d.Active() {
		t.Fatal("Activate did not enable the defender")
	}
}

func TestPublicSimulateSmallScenario(t *testing.T) {
	s := DefaultScenario()
	s.Topology.NumRouters = 12
	s.Topology.BystanderHosts = 6
	s.Workload.TotalFlows = 15
	s.Duration = 1500 * sim.Millisecond
	s.Workload.AttackStart = 500 * sim.Millisecond

	res, err := Simulate(s)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !res.Activated {
		t.Fatal("defense never activated")
	}
	if res.Accuracy < 0.85 {
		t.Fatalf("accuracy %.3f too low", res.Accuracy)
	}
}

func TestPublicFigureList(t *testing.T) {
	ids := AllFigures()
	if len(ids) < 11 {
		t.Fatalf("expected at least the paper's 11 figure panels, got %d", len(ids))
	}
	seen := map[FigureID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate figure id %q", id)
		}
		seen[id] = true
	}
	for _, want := range []FigureID{"3a", "3b", "4a", "4b", "5a", "5b", "5c", "6a", "6b", "6c", "7"} {
		if !seen[want] {
			t.Fatalf("figure %q missing from AllFigures", want)
		}
	}
}
