package mafic

import (
	"testing"

	"mafic/internal/experiment"
	"mafic/internal/sim"
)

// integrationScenario is a mid-sized scenario used for cross-module
// invariant checks: large enough that detection, probing, classification and
// recovery all happen, small enough to run in well under a second.
func integrationScenario(seed int64) Scenario {
	s := DefaultScenario()
	s.Seed = seed
	s.Topology.NumRouters = 20
	s.Topology.BystanderHosts = 8
	s.Workload.TotalFlows = 25
	s.Duration = 2 * sim.Second
	s.Workload.AttackStart = 600 * sim.Millisecond
	return s
}

// TestIntegrationPacketAccountingInvariants checks conservation-style
// relations between the raw counters of a full run: nothing is dropped that
// never arrived, nothing reaches the victim in excess of what entered the
// domain, and the published rates stay inside [0,1].
func TestIntegrationPacketAccountingInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 5, 8} {
		res, err := Simulate(integrationScenario(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c := res.Counts

		attackArrived := c.ATRAttackPre + c.ATRAttackPost
		legitArrived := c.ATRLegitPre + c.ATRLegitPost
		if c.DropAttack > attackArrived {
			t.Fatalf("seed %d: dropped more attack packets (%d) than arrived (%d)", seed, c.DropAttack, attackArrived)
		}
		legitDropped := c.DropLegitProbing + c.DropLegitPDT + c.DropLegitIllegal
		if legitDropped > legitArrived {
			t.Fatalf("seed %d: dropped more legit packets (%d) than arrived (%d)", seed, legitDropped, legitArrived)
		}
		if c.VictimAttackPre+c.VictimAttack > attackArrived {
			t.Fatalf("seed %d: victim saw more attack packets than entered the domain", seed)
		}
		// Dropped and delivered attack packets cannot exceed arrivals.
		if c.DropAttack+c.VictimAttack > attackArrived {
			t.Fatalf("seed %d: attack drops (%d) + deliveries (%d) exceed arrivals (%d)",
				seed, c.DropAttack, c.VictimAttack, attackArrived)
		}

		for name, rate := range map[string]float64{
			"accuracy": res.Accuracy,
			"theta_p":  res.FalsePositiveRate,
			"theta_n":  res.FalseNegativeRate,
			"L_r":      res.LegitimateDropRate,
			"beta":     res.TrafficReduction,
		} {
			if rate < 0 || rate > 1 {
				t.Fatalf("seed %d: %s = %v outside [0,1]", seed, name, rate)
			}
		}
		// Accuracy and false negatives partition the post-activation
		// attack traffic. Attack packets that entered the domain just
		// before activation but reached the victim just after it are
		// counted in θn's numerator without appearing in the shared
		// denominator, so allow a small boundary tolerance.
		if res.Accuracy+res.FalseNegativeRate > 1.03 {
			t.Fatalf("seed %d: α (%v) + θn (%v) exceed 1", seed, res.Accuracy, res.FalseNegativeRate)
		}
	}
}

// TestIntegrationFlowTableOutcomes checks the flow-level story of the default
// scenario: every legitimate TCP flow should end in the NFT, every attack
// flow in the PDT, and the defence should never linger in the SFT long after
// the probing windows have closed.
func TestIntegrationFlowTableOutcomes(t *testing.T) {
	res, err := Simulate(integrationScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.LegitFlowsCondemned != 0 {
		t.Fatalf("%d legitimate flows condemned at the default operating point", res.LegitFlowsCondemned)
	}
	if res.AttackFlowsForgiven != 0 {
		t.Fatalf("%d attack flows classified as nice at the default operating point", res.AttackFlowsForgiven)
	}
	if res.DefenseStats.FlowsCondemned == 0 {
		t.Fatal("no flow was ever condemned despite an ongoing attack")
	}
	if res.DefenseStats.FlowsNice == 0 {
		t.Fatal("no legitimate flow was promoted to the NFT")
	}
}

// TestIntegrationLegitimateTrafficRecovers verifies the paper's recovery
// claim end to end: after the attack flows are cut off, the victim's
// legitimate arrival rate returns to (approximately) its pre-attack level.
func TestIntegrationLegitimateTrafficRecovers(t *testing.T) {
	s := integrationScenario(4)
	s.Duration = 3 * sim.Second
	res, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Activated {
		t.Fatal("defense never activated")
	}
	// Compare the legitimate delivery rate just before the attack with
	// the final 500 ms of the run.
	var preAttack, tail float64
	var preBins, tailBins int
	for _, bin := range res.Series {
		switch {
		case bin.Time >= 300*sim.Millisecond && bin.Time < 600*sim.Millisecond:
			preAttack += float64(bin.LegitPackets)
			preBins++
		case bin.Time >= s.Duration-500*sim.Millisecond:
			tail += float64(bin.LegitPackets)
			tailBins++
		}
	}
	if preBins == 0 || tailBins == 0 {
		t.Fatal("series does not cover the comparison windows")
	}
	preRate := preAttack / float64(preBins)
	tailRate := tail / float64(tailBins)
	if tailRate < 0.6*preRate {
		t.Fatalf("legitimate traffic did not recover: pre-attack %.1f pkt/bin, tail %.1f pkt/bin", preRate, tailRate)
	}
}

// TestIntegrationHigherPdDropsMoreAggressively checks the key monotone
// relationship behind Figures 3(a), 4(a) and 7: raising P_d increases both
// the attack-dropping accuracy and the legitimate probing losses.
func TestIntegrationHigherPdDropsMoreAggressively(t *testing.T) {
	run := func(pd float64) experiment.Result {
		s := integrationScenario(6)
		s.MAFIC.DropProbability = pd
		res, err := Simulate(s)
		if err != nil {
			t.Fatalf("pd=%v: %v", pd, err)
		}
		return res
	}
	low := run(0.5)
	high := run(0.95)
	if high.Accuracy <= low.Accuracy {
		t.Fatalf("accuracy did not increase with Pd: %.4f (0.95) vs %.4f (0.5)", high.Accuracy, low.Accuracy)
	}
	if high.FalseNegativeRate >= low.FalseNegativeRate {
		t.Fatalf("θn did not decrease with Pd: %.4f (0.95) vs %.4f (0.5)", high.FalseNegativeRate, low.FalseNegativeRate)
	}
}
